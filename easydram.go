// Package easydram is a software reproduction of EasyDRAM (Canpolat et al.,
// DSN 2025): an infrastructure for fast and accurate end-to-end evaluation
// of emerging DRAM techniques, built around a software-defined memory
// controller and the time-scaling emulation technique.
//
// The package is the public facade over the internal stack (DRAM chip model
// with process variation, DRAM Bender engine, EasyTile, software memory
// controller, time-scaling engine, processor and cache models). A typical
// session:
//
//	sys, err := easydram.NewSystem(easydram.TimeScaled())
//	if err != nil { ... }
//	res, err := sys.Run(easydram.NewKernel("touch", func(g *easydram.Gen) {
//		for i := 0; i < 1024; i++ {
//			g.Load(uint64(i) * 64)
//		}
//	}))
//	fmt.Println(res.ProcCycles, res.EmulatedTime)
package easydram

import (
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/core"
	"easydram/internal/dram"
	"easydram/internal/fault"
	"easydram/internal/mem"
	"easydram/internal/ramulator"
	"easydram/internal/smc"
	"easydram/internal/workload"
)

// Kernel is a named workload: a generator of processor operations.
type Kernel = workload.Kernel

// Gen is the emission context handed to kernel bodies.
type Gen = workload.Gen

// Result reports one workload run (execution time in emulated processor
// cycles, FPGA wall time, per-component statistics).
type Result = core.Result

// PS is simulated time in picoseconds.
type PS = clock.PS

// Cycles counts clock cycles.
type Cycles = clock.Cycles

// NewKernel wraps a kernel body under a name.
func NewKernel(name string, body func(*Gen)) Kernel {
	return Kernel{Name: name, Body: body}
}

// Option configures a System.
type Option func(*core.Config)

// TimeScaled selects the paper's headline configuration: a Cortex-A57-class
// out-of-order core emulated at 1.43 GHz over a 100 MHz FPGA fabric via
// time scaling, a 512 KiB L2, and DDR4-1333.
func TimeScaled() Option {
	return func(cfg *core.Config) { *cfg = core.TimeScalingA57() }
}

// NoTimeScaling selects the PiDRAM-class configuration: a 50 MHz in-order
// core exposed to the software memory controller's real latency.
func NoTimeScaling() Option {
	return func(cfg *core.Config) { *cfg = core.NoTimeScaling() }
}

// ValidationPair returns the two §6 validation configurations: a 100 MHz
// processor time-scaled to 1 GHz, and the directly simulated 1 GHz
// reference.
func ValidationPair() (scaled, reference Option) {
	return func(cfg *core.Config) { *cfg = core.TimeScaling1GHz() },
		func(cfg *core.Config) { *cfg = core.Reference1GHz() }
}

// RamulatorBaseline selects the Ramulator 2.0-class software-simulator
// baseline (simple out-of-order core, ideal DRAM, no variation).
func RamulatorBaseline() Option {
	return func(cfg *core.Config) { *cfg = ramulator.Config(0) }
}

// WithSeed sets the DRAM process-variation seed.
func WithSeed(seed uint64) Option {
	return func(cfg *core.Config) { cfg.DRAM.Seed = seed }
}

// WithDataTracking enables the DRAM data store (needed for profiling and
// RowClone correctness checks; timing-only runs leave it off).
func WithDataTracking() Option {
	return func(cfg *core.Config) { cfg.DRAM.TrackData = true }
}

// WithScheduler selects the memory scheduling policy: "fr-fcfs" (default),
// "fcfs", or "bliss".
func WithScheduler(name string) Option {
	return func(cfg *core.Config) {
		switch name {
		case "fcfs":
			cfg.Scheduler = smc.FCFS{}
		case "bliss":
			cfg.Scheduler = smc.NewBLISS()
		default:
			cfg.Scheduler = smc.FRFCFS{}
		}
	}
}

// Scheduler is the pluggable memory-scheduling interface: Pick selects the
// next buffered request to serve. Implement it (and optionally
// BurstScheduler) to run a custom policy on the software-defined memory
// controller; see examples/customscheduler.
type Scheduler = smc.Scheduler

// BurstScheduler extends Scheduler with row-hit burst picking: PickBurst
// returns the run of requests the policy would serve consecutively on one
// (bank, row), which the controller then serves through a single DRAM
// Bender program (see WithBurstCap).
type BurstScheduler = smc.BurstScheduler

// SchedEntry is one buffered request as schedulers see it: decoded DRAM
// coordinates plus an arrival sequence number (the table is unordered;
// order by Seq). SchedEntry.IsAccess distinguishes plain accesses from
// technique requests.
type SchedEntry = smc.Entry

// ReqKind classifies a buffered request (SchedEntry.Kind).
type ReqKind = mem.Kind

// Request kinds a scheduler observes in the request table: plain accesses
// (ReqRead, ReqWrite, ReqWriteback) plus the technique kinds, which
// SchedEntry.IsAccess filters out.
const (
	// ReqRead is a demand cache-line fill.
	ReqRead = mem.Read
	// ReqWrite is a cache-line store reaching memory.
	ReqWrite = mem.Write
	// ReqWriteback is a posted dirty-line eviction.
	ReqWriteback = mem.Writeback
)

// WithCustomScheduler installs a user-provided scheduling policy.
func WithCustomScheduler(s Scheduler) Option {
	return func(cfg *core.Config) { cfg.Scheduler = s }
}

// WithBurstCap bounds how many same-row requests one controller step may
// serve through a single DRAM Bender program (0 = serial service). Burst
// service is bit-identical to serial service in emulated time — the engine
// grants a burst only when it can prove equivalence — so the cap trades
// nothing but host time. It engages when refresh is off (see
// WithRefresh).
func WithBurstCap(n int) Option {
	return func(cfg *core.Config) { cfg.BurstCap = n }
}

// WithRefresh toggles periodic refresh.
func WithRefresh(on bool) Option {
	return func(cfg *core.Config) { cfg.RefreshEnabled = on }
}

// WithShardWorkers bounds the host worker pool that executes emulated
// memory channels in parallel during fence and drain phases (see WithTopology
// for channels). Sharding is pure host parallelism: results are byte-identical
// at any worker count. 0 — the default — uses GOMAXPROCS; 1 forces the serial
// path with zero shard overhead; counts above the channel count are clamped.
// Single-channel systems always run serial.
func WithShardWorkers(n int) Option {
	return func(cfg *core.Config) { cfg.ShardWorkers = n }
}

// WithTopology selects the module organisation: `channels` independent
// memory channels (each with its own software-memory-controller instance,
// request table, and DRAM Bender pipeline) and `ranks` ranks sharing each
// channel's bus (consecutive CAS commands to different ranks pay the
// rank-to-rank turnaround). Both must be powers of two; 1/1 — the default —
// is bit-identical to the paper's single-rank module. Physical addresses
// spread across channels at cache-line granularity unless WithInterleave
// overrides it.
func WithTopology(channels, ranks int) Option {
	return func(cfg *core.Config) {
		cfg.Topology.Channels = channels
		cfg.Topology.Ranks = ranks
	}
}

// WithInterleave selects the channel-interleaving granularity: "line"
// (default; consecutive cache lines rotate across channels) or "row" (each
// DRAM row's lines stay on one channel; consecutive rows rotate). Only
// meaningful with WithTopology channels > 1. An unknown name makes
// NewSystem fail (options cannot return errors, so the invalid value is
// carried into the topology and rejected by its validation).
func WithInterleave(name string) Option {
	return func(cfg *core.Config) {
		il, err := dram.ParseInterleave(name)
		if err != nil {
			cfg.Topology.Interleave = dram.Interleave(0xFF)
			return
		}
		cfg.Topology.Interleave = il
	}
}

// WithReducedTRCD installs a per-row tRCD provider built from the weak-row
// set (see System.ProfileWeakRows); rows outside the set activate with the
// reduced tRCD.
func WithReducedTRCD(provider TRCDProvider) Option {
	return func(cfg *core.Config) {
		cfg.TRCD = func(a dram.Addr) clock.PS { return provider(a.Bank, a.Row) }
	}
}

// TRCDProvider returns the tRCD (in picoseconds) to activate (bank, row)
// with; 0 selects the nominal value.
type TRCDProvider func(bank, row int) PS

// WithPagePolicy selects row-buffer management: "open" (default) or
// "closed".
func WithPagePolicy(name string) Option {
	return func(cfg *core.Config) {
		if name == "closed" {
			cfg.Policy = smc.ClosedPage
		} else {
			cfg.Policy = smc.OpenPage
		}
	}
}

// WithCores selects the emulated core count: n cores, each with a private
// L1 behind the shared L2, each running its own workload stream and
// contending for the software memory controller (see System.RunKernels).
// 0 or 1 — the default — is the single-core system, bit-identical to the
// paper's configuration. Multi-core systems are deterministic: the same
// configuration and kernels reproduce every counter exactly.
func WithCores(n int) Option {
	return func(cfg *core.Config) { cfg.Cores = n }
}

// Mix is a named multiprogram composition: one kernel per emulated core,
// each relocated into a private address window (see Mixes).
type Mix = workload.Mix

// Mixes returns the named multiprogram mixes the fairness sweep runs:
// "streaming" (all bandwidth hogs), "latency" (all pointer chases), and
// "mixed" (hogs plus a latency-sensitive chase).
func Mixes() []Mix { return workload.Mixes() }

// MixByName resolves a multiprogram mix by name.
func MixByName(name string) (Mix, error) { return workload.MixByName(name) }

// WithPrefetcher enables the L2 next-line prefetcher.
func WithPrefetcher() Option {
	return func(cfg *core.Config) { cfg.CPU.NextLinePrefetch = true }
}

// WithMaxCycles caps runs at n emulated processor cycles.
func WithMaxCycles(n Cycles) Option {
	return func(cfg *core.Config) { cfg.MaxProcCycles = n }
}

// FaultConfig configures end-to-end fault injection: chip-level faults
// (activation-disturb bit flips, transient read corruption, stuck-at lines),
// host-link faults at the Bender seam (launch failures, corrupted or short
// readbacks), and the controller's verify-and-retry recovery path (bounded
// retries with exponential emulated-time backoff, quarantine + spare-row
// remap on give-up). All faults are drawn deterministically from the system
// seed: a fixed configuration reproduces the same fault sequence at any
// worker, channel, or rank count. The zero value injects nothing and leaves
// the system bit-identical to one without fault support.
type FaultConfig = fault.Config

// MitigationConfig selects the per-channel RowHammer mitigation policy the
// software memory controller runs: "para" (probabilistic adjacent-row
// refresh on every activation) or "trr" (per-row activation counters that
// refresh a row's neighbours when it crosses the target threshold). The
// zero value (or policy "none") runs no mitigation.
type MitigationConfig = fault.MitigationConfig

// DefaultFaults returns a moderate all-seams-on fault configuration
// (disturb thresholds in the thousands, 1e-4-class transient rates,
// recovery enabled) — a starting point for robustness studies.
func DefaultFaults() FaultConfig { return fault.DefaultConfig() }

// WithFaults installs a fault-injection configuration (see FaultConfig).
func WithFaults(fc FaultConfig) Option {
	return func(cfg *core.Config) { cfg.Faults = fc }
}

// WithMitigation installs a RowHammer mitigation policy by name: "none",
// "para", or "trr" (each channel's controller gets its own seeded
// instance). Unknown names are rejected by NewSystem.
func WithMitigation(policy string) Option {
	return func(cfg *core.Config) { cfg.Mitigation = fault.MitigationConfig{Policy: policy} }
}

// WithMitigationConfig installs a fully specified mitigation policy
// (probability, threshold, seed — see MitigationConfig).
func WithMitigationConfig(mc MitigationConfig) Option {
	return func(cfg *core.Config) { cfg.Mitigation = mc }
}

// System is an assembled emulated system.
type System struct {
	cfg core.Config
	sys *core.System
}

// NewSystem builds a system; with no options it is the TimeScaled
// configuration.
func NewSystem(opts ...Option) (*System, error) {
	cfg := core.TimeScalingA57()
	for _, o := range opts {
		o(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, fmt.Errorf("easydram: %w", err)
	}
	return &System{cfg: cfg, sys: sys}, nil
}

// Run executes the kernel to completion. A System's DRAM and cache state
// persists across runs; build a fresh System for independent measurements.
func (s *System) Run(k Kernel) (Result, error) {
	res, err := s.sys.Run(k.Stream())
	if err != nil {
		return res, fmt.Errorf("easydram: %w", err)
	}
	return res, nil
}

// RunKernels executes one kernel per emulated core to completion on a
// multi-core system (WithCores): kernel i runs on core i, relocated into
// core i's private address window (the emulated fabric has no coherence
// protocol, so cores must not share lines — see the multi-core section of
// ARCHITECTURE.md). The kernel count must equal the configured core count.
// Result.PerCore carries each core's cycles, marks, and cache statistics;
// the top-level counters aggregate all cores.
func (s *System) RunKernels(ks []Kernel) (Result, error) {
	streams := make([]workload.Stream, len(ks))
	for i, k := range ks {
		streams[i] = workload.OffsetStream(k.Stream(), uint64(i)*workload.MixWindowBytes)
	}
	res, err := s.sys.RunStreams(streams)
	if err != nil {
		return res, fmt.Errorf("easydram: %w", err)
	}
	return res, nil
}

// RunMix executes a named multiprogram mix on a multi-core system: core i
// runs mix.KernelAt(i, n) in its own window, where n is the configured core
// count.
func (s *System) RunMix(m Mix) (Result, error) {
	n := s.cfg.Cores
	if n < 1 {
		n = 1
	}
	res, err := s.sys.RunStreams(m.Streams(n))
	if err != nil {
		return res, fmt.Errorf("easydram: %w", err)
	}
	return res, nil
}

// ProfileLine tests whether the cache line at physical address pa reads
// reliably at the given tRCD, using a host-driven §8.1 profiling request.
// Requires WithDataTracking. It is the per-line compatibility path; bulk
// characterization should use ProfileRow.
func (s *System) ProfileLine(pa uint64, rcd PS) (bool, error) {
	return s.sys.ProfileLine(pa, rcd)
}

// ProfileRow tests every cache line of the DRAM row containing pa at the
// given tRCD with a single whole-row profiling request — one host
// round-trip and one DRAM Bender program per row instead of one per line.
// It returns the number of leading lines that read reliably and whether
// the entire row passed. Requires WithDataTracking.
func (s *System) ProfileRow(pa uint64, rcd PS) (okLines int, ok bool, err error) {
	return s.sys.ProfileRow(pa, rcd)
}

// TestRowClone tests whether the row at src can be RowClone-copied onto the
// row at dst reliably (trials repetitions).
func (s *System) TestRowClone(src, dst uint64, trials int) (bool, error) {
	return s.sys.TestRowClone(src, dst, trials)
}

// RowBytes reports the DRAM row size of the modelled module.
func (s *System) RowBytes() int { return s.sys.Mapper().RowBytes() }

// MapAddr translates a physical address into DRAM coordinates.
func (s *System) MapAddr(pa uint64) (bank, row, col int) {
	a := s.sys.Mapper().Map(pa)
	return a.Bank, a.Row, a.Col
}

// Internal access for the technique helpers in this package.
func (s *System) internal() *core.System { return s.sys }

// Config returns a copy of the underlying configuration.
func (s *System) Config() core.Config { return s.cfg }
