// Command dramprofiler characterizes the modelled DRAM module the way §8.1
// characterizes real chips: it issues whole-row profiling requests through
// the software memory controller (one host round-trip per row per tRCD
// level) and reports per-row minimum reliable tRCD (Figure 12), the
// characterization throughput, and RowClone clonability statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"easydram"
	"easydram/internal/experiments"
)

func main() {
	rows := flag.Int("rows", 512, "rows per bank to profile")
	seed := flag.Uint64("seed", 1, "DRAM variation seed")
	clonePairs := flag.Int("clonepairs", 256, "intra-subarray row pairs to test for RowClone")
	workers := flag.Int("workers", 0, "profiling worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	opt := experiments.Default()
	opt.HeatRows = *rows
	opt.Seed = *seed
	opt.Workers = *workers

	t0 := time.Now()
	heat, err := experiments.Figure12(opt)
	if err != nil {
		log.Fatalf("dramprofiler: %v", err)
	}
	elapsed := time.Since(t0)
	fmt.Print(heat.Heatmap())
	profiled := heat.Banks * heat.Rows
	fmt.Printf("profiled %d rows in %v via whole-row requests (%.0f rows/s)\n",
		profiled, elapsed.Round(time.Millisecond), float64(profiled)/elapsed.Seconds())

	// Clonability survey: adjacent intra-subarray pairs across banks.
	sys, err := easydram.NewSystem(easydram.TimeScaled(), easydram.WithDataTracking(), easydram.WithSeed(*seed))
	if err != nil {
		log.Fatalf("dramprofiler: %v", err)
	}
	rowBytes := uint64(sys.RowBytes())
	const banks = 16
	ok := 0
	for i := 0; i < *clonePairs; i++ {
		src := uint64(i) * rowBytes * banks // row i, bank 0
		dst := src + rowBytes*banks         // row i+1, bank 0
		good, err := sys.TestRowClone(src, dst, 3)
		if err != nil {
			log.Fatalf("dramprofiler: %v", err)
		}
		if good {
			ok++
		}
	}
	fmt.Printf("RowClone: %d/%d adjacent intra-subarray pairs clonable (%.1f%%)\n",
		ok, *clonePairs, 100*float64(ok)/float64(*clonePairs))
}
