// Command benchall regenerates every table and figure of the paper and
// writes an EXPERIMENTS-style report to stdout (or a file), recording the
// paper's numbers next to the measured ones. It also emits a
// machine-readable BENCH_<date>.json snapshot — headline metric values plus
// per-section wall-clock timings — so the repository accumulates a
// performance trajectory that future optimisation work is judged against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"easydram"
	"easydram/internal/core"
	"easydram/internal/difffuzz"
	"easydram/internal/dram"
	"easydram/internal/experiments"
	"easydram/internal/smc"
	"easydram/internal/stats"
	"easydram/internal/techniques"
	"easydram/internal/workload"
)

func main() {
	out := flag.String("o", "", "report output file (default stdout)")
	quick := flag.Bool("quick", false, "use reduced-scale parameters")
	seed := flag.Uint64("seed", 1, "DRAM variation seed")
	workers := flag.Int("workers", 0, "experiment worker pool size (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", `snapshot file (default BENCH_<date>.json; "none" disables)`)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("benchall: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("benchall: %v", err)
			}
		}()
		w = f
	}

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
		opt.KernelSize = workload.Small
	}
	opt.Seed = *seed
	opt.Workers = *workers

	snap := newSnapshot(opt, *quick)
	if err := report(w, opt, snap); err != nil {
		log.Fatalf("benchall: %v", err)
	}

	if *jsonOut != "none" {
		path := *jsonOut
		if path == "" {
			// Keyed off the snapshot's own date stamp so a run crossing
			// midnight cannot produce a filename/content mismatch. The
			// snapshots are the repo's perf trajectory, so a same-day file
			// is never clobbered: later runs uniquify with a letter suffix.
			path = fmt.Sprintf("BENCH_%s.json", snap.Date)
			for suffix := 'b'; ; suffix++ {
				if _, err := os.Stat(path); os.IsNotExist(err) {
					break
				}
				if suffix > 'z' {
					log.Fatalf("benchall: all same-day snapshot names through BENCH_%sz.json exist; pass -json to name one explicitly", snap.Date)
				}
				path = fmt.Sprintf("BENCH_%s%c.json", snap.Date, suffix)
			}
		}
		if err := snap.write(path); err != nil {
			log.Fatalf("benchall: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchall: wrote %s\n", path)
	}
}

// snapshot is the machine-readable performance record one benchall run
// leaves behind (the perf trajectory's data points).
type snapshot struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// HostCPUs records the machine's logical CPU count, so trend gates on
	// host-parallelism metrics (workers_speedup_4x) can skip hosts that
	// cannot express the parallelism being measured.
	HostCPUs int     `json:"host_cpus"`
	Workers  int     `json:"workers"`
	Quick    bool    `json:"quick"`
	Seed     uint64  `json:"seed"`
	WallSecs float64 `json:"wall_seconds"`
	// Sections records per-experiment wall-clock seconds in run order.
	Sections []sectionTiming `json:"sections"`
	// Metrics holds the headline numeric results keyed experiment/metric.
	Metrics map[string]float64 `json:"metrics"`
}

type sectionTiming struct {
	Name     string  `json:"name"`
	WallSecs float64 `json:"wall_seconds"`
}

func newSnapshot(opt experiments.Options, quick bool) *snapshot {
	return &snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		HostCPUs:   runtime.NumCPU(),
		Workers:    opt.Workers,
		Quick:      quick,
		Seed:       opt.Seed,
		Metrics:    map[string]float64{},
	}
}

func (s *snapshot) write(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func report(w io.Writer, opt experiments.Options, snap *snapshot) error {
	start := time.Now()
	section := func(title string) { fmt.Fprintf(w, "\n## %s\n\n", title) }
	// timed runs one experiment section and records its wall clock in the
	// snapshot (the per-section perf trajectory).
	timed := func(name string, f func() error) error {
		t0 := time.Now()
		if err := f(); err != nil {
			return err
		}
		snap.Sections = append(snap.Sections, sectionTiming{name, time.Since(t0).Seconds()})
		return nil
	}

	sections := []struct {
		name string
		run  func() error
	}{
		{"table1", func() error {
			section("Table 1 — platform comparison")
			t1, err := experiments.Table1(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, t1.Render())
			snap.Metrics["table1/mcycles_per_sec"] = t1.MeasuredCyclesPerSec / 1e6
			return nil
		}},
		{"figure2", func() error {
			section("Figure 2 — request time breakdown")
			f2, err := experiments.Figure2(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, f2.Table())
			snap.Metrics["figure2/smc_vs_real_latency_ratio"] = f2.LatencyRatio(experiments.PlatformSMC, experiments.PlatformReal)
			return nil
		}},
		{"validation", func() error {
			section("§6 — time-scaling validation (paper: <0.1% avg, <1% max)")
			val, err := experiments.Validation(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, val.Table())
			snap.Metrics["validation/avg_err_pct"] = val.AvgPct
			snap.Metrics["validation/max_err_pct"] = val.MaxPct
			return nil
		}},
		{"figure8", func() error {
			section("Figure 8 — lmbench latency profile")
			f8, err := experiments.Figure8(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, f8.Table())
			snap.Metrics["figure8/ts_mem_cycles"] = f8.PlateauCycles(experiments.NameTS)
			snap.Metrics["figure8/nots_mem_cycles"] = f8.PlateauCycles(experiments.NameNoTS)
			snap.Metrics["figure8/a57_mem_cycles"] = f8.PlateauCycles(experiments.NameCortex)
			return nil
		}},
		{"figure10", func() error {
			section("Figure 10 — RowClone No Flush (paper: copy 306.7x/15.0x/27.2x, init 36.7x/1.8x/17.3x)")
			f10, err := experiments.RowClone(opt, false)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, f10.Table())
			snap.Metrics["figure10/copy_ts_avg_x"] = stats.Mean(f10.Copy[experiments.NameTS])
			snap.Metrics["figure10/copy_nots_avg_x"] = stats.Mean(f10.Copy[experiments.NameNoTS])
			snap.Metrics["figure10/init_ts_avg_x"] = stats.Mean(f10.Init[experiments.NameTS])
			return nil
		}},
		{"figure11", func() error {
			section("Figure 11 — RowClone CLFLUSH (paper: copy 3.1x/4.04x avg)")
			f11, err := experiments.RowClone(opt, true)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, f11.Table())
			snap.Metrics["figure11/copy_ts_avg_x"] = stats.Mean(f11.Copy[experiments.NameTS])
			return nil
		}},
		{"figure12", func() error {
			section("Figure 12 — minimum reliable tRCD heatmap (paper: 84.5% strong)")
			f12, err := experiments.Figure12(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, f12.Heatmap())
			snap.Metrics["figure12/strong_pct"] = 100 * f12.StrongFraction
			return nil
		}},
		{"figure13", func() error {
			section("Figures 13 & 14 — tRCD reduction (paper: +2.75% avg EasyDRAM, +2.58% Ramulator) and simulation speed (paper: 5.9x avg)")
			f13, err := experiments.Figure13(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, f13.Table())
			fmt.Fprintln(w, f13.SpeedTable())
			fmt.Fprintf(w, "EasyDRAM avg improvement: %.2f%% (max %.2f%%)\n",
				f13.AvgSpeedupPct(experiments.NameTS), f13.MaxSpeedupPct(experiments.NameTS))
			fmt.Fprintf(w, "Ramulator avg improvement: %.2f%% (max %.2f%%)\n",
				f13.AvgSpeedupPct(experiments.NameRamulator), f13.MaxSpeedupPct(experiments.NameRamulator))
			fmt.Fprintf(w, "EasyDRAM sim speed geomean %.2f MHz\n", stats.Geomean(f13.SimSpeedMHz[experiments.NameTS]))
			snap.Metrics["figure13/easydram_avg_pct"] = f13.AvgSpeedupPct(experiments.NameTS)
			snap.Metrics["figure13/easydram_max_pct"] = f13.MaxSpeedupPct(experiments.NameTS)
			snap.Metrics["figure13/ramulator_avg_pct"] = f13.AvgSpeedupPct(experiments.NameRamulator)
			snap.Metrics["figure14/easydram_geomean_mhz"] = stats.Geomean(f13.SimSpeedMHz[experiments.NameTS])
			snap.Metrics["figure14/ramulator_geomean_mhz"] = stats.Geomean(f13.SimSpeedMHz[experiments.NameRamulator])
			if m := snap.Metrics["figure14/ramulator_geomean_mhz"]; m > 0 {
				snap.Metrics["figure14/speed_ratio"] = snap.Metrics["figure14/easydram_geomean_mhz"] / m
			}
			return nil
		}},
		{"energy", func() error {
			section("Extension — RowClone DRAM energy (RowClone paper: ~74x for FPM copy)")
			en, err := experiments.Energy(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, en.Table())
			snap.Metrics["energy/advantage_x"] = en.Ratio[len(en.Ratio)-1]
			return nil
		}},
		{"ablations", func() error {
			section("Extension — design-axis ablations")
			abl, err := experiments.Ablations(opt)
			if err != nil {
				return err
			}
			for _, a := range abl {
				fmt.Fprintln(w, a.Table())
			}
			return nil
		}},
		{"disturb", func() error {
			section("Extension — RowHammer disturb sweep (escaped flips and mitigation overhead)")
			ds, err := experiments.DisturbSweep(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, ds.Table())
			snap.Metrics["faults/none_escaped_flips"] = float64(ds.Escaped("none"))
			snap.Metrics["faults/para_escaped_flips"] = float64(ds.Escaped("para"))
			snap.Metrics["faults/trr_escaped_flips"] = float64(ds.Escaped("trr"))
			snap.Metrics["faults/trr_overhead_pct"] = ds.Overhead("trr")
			return nil
		}},
		{"snapshot", func() error {
			section("Extension — durable characterization store and restore identity")
			ws, err := experiments.WarmStart(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, ws.Table())
			// The speedup is host wall clock — snapshot JSON and stderr
			// only, never the report (whose bytes stay machine-identical).
			snap.Metrics["snapshot/warm_start_speedup_x"] = ws.SpeedupX()
			snap.Metrics["snapshot/fallbacks"] = float64(ws.Fallbacks)
			snap.Metrics["snapshot/identity_mismatches"] = float64(ws.IdentityMismatches)
			fmt.Fprintf(os.Stderr, "benchall: snapshot: warm-start %.1fx, %d fallback(s), %d identity mismatch(es)\n",
				ws.SpeedupX(), ws.Fallbacks, ws.IdentityMismatches)
			return nil
		}},
		{"fairness", func() error {
			section("Extension — multi-core fairness sweep (BLISS vs FR-FCFS under multiprogram mixes)")
			fr, err := experiments.FairnessSweep(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, fr.Table())
			// The headline cells: the mixed workload at the grid's top core
			// count, per scheduler. BLISS's max slowdown (and the FR-FCFS
			// baseline it is judged against) plus the delivered throughput.
			counts := experiments.FairnessCoreCounts(opt)
			top := counts[len(counts)-1]
			bl := fr.Cell("bliss", "mixed", top)
			base := fr.Cell("fr-fcfs", "mixed", top)
			if bl == nil || base == nil {
				return fmt.Errorf("fairness: missing mixed cells at %d cores", top)
			}
			snap.Metrics["fairness/max_slowdown"] = bl.MaxSlowdown
			snap.Metrics["fairness/weighted_speedup"] = bl.WeightedSpeedup
			snap.Metrics["fairness/frfcfs_max_slowdown"] = base.MaxSlowdown
			return nil
		}},
		{"substrate", func() error { return substrateMetrics(snap) }},
		// Last on purpose: the sweep churns through hundreds of full system
		// runs, and the heap it grows would inflate the substrate
		// microbenchmarks' GC share if it ran before them.
		{"difffuzz", func() error {
			section("Extension — differential fuzz sweep (seeded config space vs direct simulation)")
			res := difffuzz.Sweep(difffuzz.SweepOptions{Seed: difffuzz.DefaultSeed, Workers: opt.Workers})
			fmt.Fprintln(w, res.Summary())
			if len(res.Failures) > 0 {
				r := res.Reports[res.Failures[0]]
				return fmt.Errorf("difffuzz: %d of %d cases failed (first: seed %#x %s: %s)",
					len(res.Failures), len(res.Reports), r.Case.Seed, r.Failure.Check, r.Failure.Detail)
			}
			snap.Metrics["difffuzz/configs_checked"] = float64(len(res.Reports))
			snap.Metrics["difffuzz/max_err_pct"] = res.MaxErrPct
			snap.Metrics["difffuzz/avg_err_pct"] = res.AvgErrPct
			return nil
		}},
	}
	for _, s := range sections {
		if err := timed(s.name, s.run); err != nil {
			return err
		}
	}

	snap.WallSecs = time.Since(start).Seconds()
	// Wall-clock goes to the snapshot and stderr, never the report: the
	// report's bytes are identical across runs and -workers settings, which
	// is the cheap determinism probe for the parallel harness.
	fmt.Fprintf(os.Stderr, "benchall: total runtime %v\n", time.Since(start).Round(time.Second))
	return nil
}

// substrateMetrics records simulator-substrate microbenchmarks in the
// snapshot: per-operation cost and steady-state allocations of the
// cache-hit and miss-path service loops, and the §8.1 whole-row
// characterization fast path's throughput and per-row host round-trips.
// These are the machine-level numbers the CI bench-trend step
// (cmd/benchtrend) guards against regression; the allocs/op metrics gate
// at exactly zero, machine shape notwithstanding. They go to the JSON
// snapshot and stderr only — never the report, whose experiment output
// stays byte-identical across runs and worker counts (the determinism
// probe relies on that).
func substrateMetrics(snap *snapshot) error {
	// The kernels are shared with BenchmarkSubstrateCacheAccess/MissPath in
	// bench_test.go (workload.Substrate*), so these snapshot metrics measure
	// exactly the benchmarked code.
	var benchErr error
	substrate := func(kernel func(n int) workload.Kernel) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			sys, err := easydram.NewSystem()
			if err != nil {
				benchErr = err
				b.Skip()
			}
			// Warm outside the measured region: system assembly and the
			// engine/chip buffers' one-time growth must not count toward
			// the allocs/op metric, which gates at exactly zero (the CI
			// smoke step amortizes the same way with a fixed large op
			// count).
			if _, err := sys.Run(kernel(50000)); err != nil {
				benchErr = err
				b.Skip()
			}
			b.ResetTimer()
			if _, err := sys.Run(kernel(b.N)); err != nil {
				benchErr = err
			}
		})
	}
	cacheRes := substrate(workload.SubstrateStream)
	missRes := substrate(workload.SubstrateMisses)
	if benchErr != nil {
		return benchErr
	}

	// Fault-tolerance tax on the hot path, via the same SMC-level harness
	// as BenchmarkSubstrateFaultFree: every fault seam armed (disturb
	// counting, verify-and-retry reads) with nothing ever firing. ns/op is
	// gated against regression and allocs/op gates at exactly zero — fault
	// tolerance must not put allocations on the fault-free service loop.
	faultFreeRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		h, err := smc.NewFaultFreeBenchHarness()
		if err != nil {
			benchErr = err
			b.Skip()
		}
		if err := h.ServeRowBursts(50000, workload.RowBurstDepth, 1); err != nil {
			benchErr = err
			b.Skip()
		}
		b.ResetTimer()
		if err := h.ServeRowBursts(b.N, workload.RowBurstDepth, 1); err != nil {
			benchErr = err
		}
	})
	if benchErr != nil {
		return benchErr
	}

	// Row-hit burst service, via the same SMC-level harness as
	// BenchmarkSubstrateRowHitBurst: burst ns/op (gated), its allocs/op
	// (gated at zero), the vs-serial speedup, and the mean burst length
	// (gated — a drop means the service path stopped coalescing).
	var burstStats smc.ControllerStats
	var serialSecs float64
	burstRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		burst, err := smc.NewBenchHarness()
		if err != nil {
			benchErr = err
			b.Skip()
		}
		serial, err := smc.NewBenchHarness()
		if err != nil {
			benchErr = err
			b.Skip()
		}
		if err := burst.ServeRowBursts(50000, workload.RowBurstDepth, workload.RowBurstDepth); err != nil {
			benchErr = err
			b.Skip()
		}
		if err := serial.ServeRowBursts(50000, workload.RowBurstDepth, 1); err != nil {
			benchErr = err
			b.Skip()
		}
		b.ResetTimer()
		if err := burst.ServeRowBursts(b.N, workload.RowBurstDepth, workload.RowBurstDepth); err != nil {
			benchErr = err
		}
		b.StopTimer()
		burstStats = burst.Ctl.Stats()
		t0 := time.Now()
		if err := serial.ServeRowBursts(b.N, workload.RowBurstDepth, 1); err != nil {
			benchErr = err
		}
		serialSecs = time.Since(t0).Seconds()
	})
	if benchErr != nil {
		return benchErr
	}
	burstSpeedup := 0.0
	if s := burstRes.T.Seconds(); s > 0 {
		burstSpeedup = serialSecs / s
	}

	// Multi-channel fan-out, via the same SMC-level harness as
	// BenchmarkSubstrateMultiChannel: ns/op of the per-channel service
	// loops (gated), allocs/op (gated at zero), and the modeled-time
	// service overlap (machine-independent, gated — a drop means the
	// channels stopped overlapping).
	const benchChannels = 4
	var multiOverlap float64
	multiRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		h, err := smc.NewMultiBenchHarness(benchChannels)
		if err != nil {
			benchErr = err
			b.Skip()
		}
		if err := h.ServeInterleaved(50000, 2*benchChannels); err != nil {
			benchErr = err
			b.Skip()
		}
		b.ResetTimer()
		if err := h.ServeInterleaved(b.N, 2*benchChannels); err != nil {
			benchErr = err
		}
		b.StopTimer()
		multiOverlap = h.Overlap()
	})
	if benchErr != nil {
		return benchErr
	}

	// Worker-pool scaling: the same fixed batch of independent system runs
	// at 1 and 4 workers. On the 4-core CI runners the ratio approaches 4;
	// recorded per merge (warn-only in cmd/benchtrend) so the parallel
	// harness's real scaling finally has a trajectory.
	scaling, err := experiments.ParallelScalingProbe(experiments.Quick(), []int{1, 4})
	if err != nil {
		return err
	}
	workersSpeedup := 0.0
	if scaling[1] > 0 {
		workersSpeedup = scaling[0] / scaling[1]
	}

	// Host-parallel channel sharding (core.Config.ShardWorkers): one
	// fence-heavy 4-channel MLP workload at 1 and 4 shard workers. The
	// results must be byte-identical (shard/identity_mismatches gates at
	// zero, on both engines); the wall-clock ratio is the within-run scaling
	// trajectory (gated on >=4-CPU hosts only); and the serial run's settle
	// counters record the mean batched-settlement length (ROADMAP item 4).
	shardSpeedup, settleBatchLen, shardMismatches, err := shardMetrics()
	if err != nil {
		return err
	}

	cfg := core.TimeScalingA57()
	cfg.DRAM = core.TechniqueDRAM()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	const rows = 256
	span := uint64(rows) * uint64(sys.Mapper().RowBytes())
	t0 := time.Now()
	if _, _, err := techniques.ProfileWeakRows(sys, 0, span, techniques.ReducedTRCD); err != nil {
		return err
	}
	rowsPerSec := rows / time.Since(t0).Seconds()
	tripsPerRow := float64(sys.HostRequests()) / rows

	snap.Metrics["substrate/cache_ns_op"] = float64(cacheRes.NsPerOp())
	snap.Metrics["substrate/miss_ns_op"] = float64(missRes.NsPerOp())
	snap.Metrics["substrate/cache_allocs_op"] = float64(cacheRes.AllocsPerOp())
	snap.Metrics["substrate/miss_allocs_op"] = float64(missRes.AllocsPerOp())
	snap.Metrics["substrate/fault_free_ns_op"] = float64(faultFreeRes.NsPerOp())
	snap.Metrics["substrate/fault_free_allocs_op"] = float64(faultFreeRes.AllocsPerOp())
	snap.Metrics["substrate/burst_ns_op"] = float64(burstRes.NsPerOp())
	snap.Metrics["substrate/burst_allocs_op"] = float64(burstRes.AllocsPerOp())
	snap.Metrics["substrate/burst_vs_serial_x"] = burstSpeedup
	snap.Metrics["substrate/multichan_ns_op"] = float64(multiRes.NsPerOp())
	snap.Metrics["substrate/multichan_allocs_op"] = float64(multiRes.AllocsPerOp())
	snap.Metrics["substrate/multichan_overlap_x"] = multiOverlap
	snap.Metrics["experiments/workers_speedup_4x"] = workersSpeedup
	snap.Metrics["substrate/shard_speedup_x"] = shardSpeedup
	snap.Metrics["substrate/settle_batch_len"] = settleBatchLen
	snap.Metrics["shard/identity_mismatches"] = float64(shardMismatches)
	snap.Metrics["smc/avg_burst_len"] = burstStats.AvgBurstLen()
	snap.Metrics["characterization/rows_per_sec"] = rowsPerSec
	snap.Metrics["characterization/roundtrips_per_row"] = tripsPerRow
	fmt.Fprintf(os.Stderr, "benchall: substrate: cache %d ns/op (%d allocs/op), miss %d ns/op (%d allocs/op), fault-free %d ns/op (%d allocs/op), burst %d ns/op (%.2fx vs serial, avg len %.1f), multichan %d ns/op (%.2fx overlap), workers 1->4 %.2fx, shard 1->4 %.2fx (%d mismatches, settle batch %.1f), characterization %.0f rows/s (%.2f round-trips/row)\n",
		cacheRes.NsPerOp(), cacheRes.AllocsPerOp(), missRes.NsPerOp(), missRes.AllocsPerOp(),
		faultFreeRes.NsPerOp(), faultFreeRes.AllocsPerOp(),
		burstRes.NsPerOp(), burstSpeedup, burstStats.AvgBurstLen(),
		multiRes.NsPerOp(), multiOverlap, workersSpeedup,
		shardSpeedup, shardMismatches, settleBatchLen, rowsPerSec, tripsPerRow)
	return nil
}

// shardMetrics measures the host-parallel shard runner on a fence-heavy
// 4-channel workload: whole-row dirtying, flushing, and a barrier per row,
// so fences carry posted writebacks spread across every channel — the phase
// the shard runner parallelizes. It returns the 1-vs-4-worker wall-clock
// speedup (best of three, each side), the serial run's mean settle batch
// length, and the count of result mismatches between worker counts across
// both engines (always zero: sharding is byte-identical by construction).
func shardMetrics() (speedup, settleBatchLen float64, mismatches int64, err error) {
	const rows = 48
	kernel := workload.Kernel{Name: "shard-wb-rows", Body: func(g *workload.Gen) {
		const rowBytes = 8192
		for r := 0; r < rows; r++ {
			base := uint64(r) * rowBytes
			for c := 0; c < rowBytes/64; c++ {
				g.Store(base + uint64(c)*64)
			}
			for c := 0; c < rowBytes/64; c++ {
				g.Flush(base + uint64(c)*64)
			}
			g.Barrier()
		}
	}}

	run := func(cfg core.Config, workers int) (core.Result, float64, float64, error) {
		cfg.Topology = dram.Topology{Channels: 4, Ranks: 1}
		cfg.CPU.MLP = 8
		cfg.ShardWorkers = workers
		best := 0.0
		var res core.Result
		var batchLen float64
		for i := 0; i < 3; i++ {
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return core.Result{}, 0, 0, err
			}
			t0 := time.Now()
			r, err := sys.Run(kernel.Stream())
			secs := time.Since(t0).Seconds()
			if err != nil {
				return core.Result{}, 0, 0, err
			}
			if best == 0 || secs < best {
				best = secs
			}
			res = r
			if batches, delivered := sys.SettleStats(); batches > 0 {
				batchLen = float64(delivered) / float64(batches)
			}
		}
		return res, best, batchLen, nil
	}

	scaled := core.TimeScalingA57()
	unscaled := core.NoTimeScaling()
	unscaled.CPU = scaled.CPU
	unscaled.CPU.Clock = unscaled.ProcPhys

	serialRes, serialSecs, batchLen, err := run(scaled, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	shardRes, shardSecs, _, err := run(scaled, 4)
	if err != nil {
		return 0, 0, 0, err
	}
	if !reflect.DeepEqual(serialRes, shardRes) {
		mismatches++
	}
	uSerialRes, _, _, err := run(unscaled, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	uShardRes, _, _, err := run(unscaled, 4)
	if err != nil {
		return 0, 0, 0, err
	}
	if !reflect.DeepEqual(uSerialRes, uShardRes) {
		mismatches++
	}
	if shardSecs > 0 {
		speedup = serialSecs / shardSecs
	}
	return speedup, batchLen, mismatches, nil
}
