// Command benchall regenerates every table and figure of the paper and
// writes an EXPERIMENTS-style report to stdout (or a file), recording the
// paper's numbers next to the measured ones.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"easydram/internal/experiments"
	"easydram/internal/stats"
	"easydram/internal/workload"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	quick := flag.Bool("quick", false, "use reduced-scale parameters")
	seed := flag.Uint64("seed", 1, "DRAM variation seed")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("benchall: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("benchall: %v", err)
			}
		}()
		w = f
	}

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
		opt.KernelSize = workload.Small
	}
	opt.Seed = *seed

	if err := report(w, opt); err != nil {
		log.Fatalf("benchall: %v", err)
	}
}

func report(w io.Writer, opt experiments.Options) error {
	start := time.Now()
	section := func(title string) { fmt.Fprintf(w, "\n## %s\n\n", title) }

	section("Table 1 — platform comparison")
	t1, err := experiments.Table1(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t1.Render())

	section("Figure 2 — request time breakdown")
	f2, err := experiments.Figure2(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, f2.Table())

	section("§6 — time-scaling validation (paper: <0.1% avg, <1% max)")
	val, err := experiments.Validation(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, val.Table())

	section("Figure 8 — lmbench latency profile")
	f8, err := experiments.Figure8(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, f8.Table())

	section("Figure 10 — RowClone No Flush (paper: copy 306.7x/15.0x/27.2x, init 36.7x/1.8x/17.3x)")
	f10, err := experiments.RowClone(opt, false)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, f10.Table())

	section("Figure 11 — RowClone CLFLUSH (paper: copy 3.1x/4.04x avg)")
	f11, err := experiments.RowClone(opt, true)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, f11.Table())

	section("Figure 12 — minimum reliable tRCD heatmap (paper: 84.5% strong)")
	f12, err := experiments.Figure12(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, f12.Heatmap())

	section("Figures 13 & 14 — tRCD reduction (paper: +2.75% avg EasyDRAM, +2.58% Ramulator) and simulation speed (paper: 5.9x avg)")
	f13, err := experiments.Figure13(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, f13.Table())
	fmt.Fprintln(w, f13.SpeedTable())
	fmt.Fprintf(w, "EasyDRAM avg improvement: %.2f%% (max %.2f%%)\n",
		f13.AvgSpeedupPct(experiments.NameTS), f13.MaxSpeedupPct(experiments.NameTS))
	fmt.Fprintf(w, "Ramulator avg improvement: %.2f%% (max %.2f%%)\n",
		f13.AvgSpeedupPct(experiments.NameRamulator), f13.MaxSpeedupPct(experiments.NameRamulator))
	fmt.Fprintf(w, "EasyDRAM sim speed geomean %.2f MHz\n", stats.Geomean(f13.SimSpeedMHz[experiments.NameTS]))

	section("Extension — RowClone DRAM energy (RowClone paper: ~74x for FPM copy)")
	en, err := experiments.Energy(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, en.Table())

	section("Extension — design-axis ablations")
	abl, err := experiments.Ablations(opt)
	if err != nil {
		return err
	}
	for _, a := range abl {
		fmt.Fprintln(w, a.Table())
	}

	fmt.Fprintf(w, "\ntotal runtime: %v\n", time.Since(start).Round(time.Second))
	return nil
}
