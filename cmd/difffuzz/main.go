// Command difffuzz runs long, budgeted differential fuzz campaigns over
// the EasyDRAM config space: batches of seeded cases (the same decoder the
// tier-1 sweep and the native FuzzDifferential target use) cross-validated
// against the direct-simulation baseline, with every failure auto-minimized
// and serialized as a JSON regression ready to triage and commit.
//
// One batch of the default size:
//
//	go run ./cmd/difffuzz
//
// A ten-minute campaign writing minimized failures into the committed
// corpus directory:
//
//	go run ./cmd/difffuzz -budget 10m -out internal/difffuzz/testdata/regressions
//
// Replaying one seed verbosely:
//
//	go run ./cmd/difffuzz -seed 0xdeadbeef -cases 1 -v
//
// Exits non-zero when any case failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"easydram/internal/difffuzz"
)

func main() {
	seed := flag.Uint64("seed", difffuzz.DefaultSeed, "base seed; batch b case i decodes seed+b*cases+i")
	cases := flag.Int("cases", 256, "cases per batch")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	budget := flag.Duration("budget", 0, "keep sweeping new batches until this much time has elapsed (0 = one batch)")
	out := flag.String("out", "internal/difffuzz/testdata/regressions", "directory minimized failures are written to")
	verbose := flag.Bool("v", false, "log every case, not just failures")
	flag.Parse()

	start := time.Now()
	totalCases, totalRuns, totalComparable, failures := 0, 0, 0, 0
	maxErr, errSum := 0.0, 0.0

	for batch := 0; ; batch++ {
		base := *seed + uint64(batch)*uint64(*cases)
		res := difffuzz.Sweep(difffuzz.SweepOptions{Seed: base, Cases: *cases, Workers: *workers})
		totalCases += len(res.Reports)
		totalRuns += res.Runs
		totalComparable += res.Comparable
		errSum += res.AvgErrPct * float64(res.Comparable)
		if res.MaxErrPct > maxErr {
			maxErr = res.MaxErrPct
		}
		fmt.Printf("batch %d (seeds %#x..%#x): %s\n", batch, base, base+uint64(*cases)-1, res.Summary())
		if *verbose {
			for _, r := range res.Reports {
				fmt.Printf("  seed %#x [%s] err %.4f%%\n", r.Case.Seed, r.Case, r.ErrPct)
			}
		}

		for _, i := range res.Failures {
			failures++
			r := res.Reports[i]
			fmt.Printf("FAIL seed %#x [%s]\n  %s: %s\n", r.Case.Seed, r.Case, r.Failure.Check, r.Failure.Detail)
			minC, minRep, runs := difffuzz.Minimize(r.Case, nil)
			totalRuns += runs
			if minRep.Failure == nil {
				// Flaky reproduction would be its own finding; record the
				// original case instead of losing it.
				minC, minRep = r.Case, r
			}
			path, err := difffuzz.Save(*out, difffuzz.Regression{
				Case:   minC,
				Check:  minRep.Failure.Check,
				Detail: minRep.Failure.Detail,
				Note:   fmt.Sprintf("found by cmd/difffuzz from seed %#x, minimized in %d runs", r.Case.Seed, runs),
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "difffuzz: saving regression: %v\n", err)
			} else {
				fmt.Printf("  minimized [%s]\n  -> %s\n", minC, path)
			}
		}

		if *budget == 0 || time.Since(start) >= *budget {
			break
		}
	}

	avgErr := 0.0
	if totalComparable > 0 {
		avgErr = errSum / float64(totalComparable)
	}
	fmt.Printf("total: %d cases (%d runs) in %v, %d comparable, max err %.4f%%, avg err %.4f%%, %d failures\n",
		totalCases, totalRuns, time.Since(start).Round(time.Millisecond), totalComparable, maxErr, avgErr, failures)
	if failures > 0 {
		os.Exit(1)
	}
}
