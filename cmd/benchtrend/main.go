// Command benchtrend compares a freshly generated benchall snapshot (see
// cmd/benchall) against the repository's committed BENCH_*.json baseline
// and exits non-zero on a performance regression — the bench-trend CI gate
// the repository's perf trajectory is judged against.
//
// Only substrate metrics are gated: the per-operation cost of the
// cache-hit and miss-path service loops and the weak-row characterization
// throughput. Raw ns/op and rows/sec are machine-dependent, so they fail
// the build only when the baseline was produced on the same machine shape
// (same Go version and GOMAXPROCS) — on a mismatched host they are
// reported as warnings instead, since a hardware difference would
// otherwise masquerade as a code regression (or hide one). The host round
// trips per profiled row are a pure property of the algorithm and gate
// unconditionally, as do the substrate allocs/op counts, which must be
// exactly zero: the service loops are zero-alloc by construction and any
// nonzero value is a code regression regardless of host or baseline. The
// same absolute gate guards faults/trr_escaped_flips — the TRR mitigation's
// zero-flip guarantee is structural, not statistical — and, as a fixed
// ceiling rather than a zero check, difffuzz/max_err_pct, which must stay
// under the paper's 1% validation envelope, and shard/identity_mismatches,
// which must be exactly zero: sharded channel execution is byte-identical
// to serial by construction. Host-parallelism metrics
// (experiments/workers_speedup_4x, substrate/shard_speedup_x) additionally
// require both snapshots to record enough host CPUs (host_cpus) to express
// the measured parallelism; otherwise they warn.
// Semantic experiment results (figure speedups,
// validation error) are reported informationally — those belong to the
// experiments' own tests.
//
// A baseline that predates the substrate metrics simply has nothing to
// compare; benchtrend reports that and passes, so the gate arms itself as
// soon as a snapshot with substrate numbers is committed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// gatedMetric describes how one substrate metric is judged.
type gatedMetric struct {
	// lowerIsBetter: true for costs (ns/op), false for throughput.
	lowerIsBetter bool
	// machineDependent metrics fail the gate only when baseline and new
	// snapshot report the same machine shape; otherwise they warn.
	machineDependent bool
	// mustBeZero metrics gate on their absolute value: any nonzero fresh
	// value fails, baseline or not. Allocation counts use this — the
	// substrate service loops are zero-alloc by construction, and that is a
	// property of the code, not the machine.
	mustBeZero bool
	// warnOnly metrics are reported with regression status but never fail
	// the build: they exist to log a trajectory (e.g. the worker pool's
	// real multi-core scaling) until enough CI points exist to justify a
	// hard gate.
	warnOnly bool
	// minHostCPUs, when nonzero, gates the metric only if BOTH snapshots
	// record at least that many host CPUs (snapshot field host_cpus; 0 on
	// baselines that predate it). Host-parallelism metrics use this: a
	// 1-core runner cannot express a 4-worker speedup, so judging it there
	// would fail every merge on hardware grounds.
	minHostCPUs int
	// mustBeBelow, when nonzero, gates the fresh value against that
	// absolute ceiling, baseline or not, on any machine shape. Paper-bound
	// accuracy metrics use this: the differential sweep is a pure function
	// of its seed, so a cycle error at or past the published envelope is a
	// fidelity regression on any host.
	mustBeBelow float64
}

// trendMetrics is the set of gated substrate metrics.
var trendMetrics = map[string]gatedMetric{
	"substrate/cache_ns_op":         {lowerIsBetter: true, machineDependent: true},
	"substrate/miss_ns_op":          {lowerIsBetter: true, machineDependent: true},
	"substrate/burst_ns_op":         {lowerIsBetter: true, machineDependent: true},
	"substrate/multichan_ns_op":     {lowerIsBetter: true, machineDependent: true},
	"substrate/fault_free_ns_op":    {lowerIsBetter: true, machineDependent: true},
	"substrate/cache_allocs_op":     {mustBeZero: true},
	"substrate/miss_allocs_op":      {mustBeZero: true},
	"substrate/burst_allocs_op":     {mustBeZero: true},
	"substrate/multichan_allocs_op": {mustBeZero: true},
	// Fault tolerance must not put allocations on the fault-free service
	// loop: the verify-and-retry read path is armed in this benchmark, so a
	// nonzero count means recovery started charging the happy path.
	"substrate/fault_free_allocs_op": {mustBeZero: true},
	// TRR's zero-escaped-flip guarantee is structural (its threshold keeps
	// every victim below the chip's minimum disturb threshold) and the sweep
	// is a pure function of the seed, so any nonzero value is a mitigation
	// bug on any host.
	"faults/trr_escaped_flips": {mustBeZero: true},
	// The multi-channel service overlap is a pure property of the traffic
	// spread and the modeled service costs (no wall clock involved), so it
	// gates on any host: a drop means the per-channel controllers stopped
	// overlapping.
	"substrate/multichan_overlap_x": {lowerIsBetter: false},
	// The worker pool's 1->4-worker wall-clock speedup on real cores. Gated
	// when both snapshots come from hosts with at least 4 CPUs (recorded in
	// host_cpus); smaller runners — where the ratio hovers near 1x on
	// hardware grounds — and pre-host_cpus baselines only warn.
	"experiments/workers_speedup_4x": {lowerIsBetter: false, machineDependent: true, minHostCPUs: 4},
	// The shard runner's 1->4-worker within-run wall-clock speedup on a
	// fence-heavy 4-channel workload. Like workers_speedup_4x it needs real
	// cores to express, so it gates only between >=4-CPU snapshots and
	// warns elsewhere.
	"substrate/shard_speedup_x": {lowerIsBetter: false, machineDependent: true, minHostCPUs: 4},
	// Sharded execution is byte-identical to serial by construction (the
	// merge replays the exact serial step order), so any mismatch between
	// worker counts is a determinism bug on any host.
	"shard/identity_mismatches": {mustBeZero: true},
	// The mean row-hit burst length is a pure property of the gather
	// algorithm on the benchmark's traffic shape (no wall clock involved),
	// so it gates on any host: a drop means the service path stopped
	// coalescing.
	"smc/avg_burst_len":                   {lowerIsBetter: false},
	"characterization/rows_per_sec":       {lowerIsBetter: false, machineDependent: true},
	"characterization/roundtrips_per_row": {lowerIsBetter: true},
	// The differential sweep's worst fault-free cycle error across the
	// tier-1 config slice must stay inside the paper's <1% validation
	// envelope (§6). The sweep is deterministic (fixed seed, modeled time
	// only), so the bound holds machine-independently.
	"difffuzz/max_err_pct": {mustBeBelow: 1.0},
	// The fairness sweep's headline cell — BLISS on the mixed mix at the top
	// core count — is a pure function of the modeled system (no wall clock),
	// so it gates machine-independently: the measured max slowdown is ~1.99
	// and FR-FCFS's is ~2.10, so a value at or past 2.5 means the streak cap
	// stopped protecting the victim core.
	"fairness/max_slowdown": {mustBeBelow: 2.5},
	// Delivered multiprogram throughput under BLISS on the same cell —
	// trajectory only until enough CI points justify a hard gate.
	"fairness/weighted_speedup": {warnOnly: true},
	// Snapshot round-trip identity is structural: a decoded profile must
	// equal the encoded one and a checkpoint-restored run must be
	// byte-identical to the uninterrupted run, on any host. Any nonzero
	// count is a serialization bug, so it gates machine-independently.
	"snapshot/identity_mismatches": {mustBeZero: true},
}

type snapshot struct {
	Date       string             `json:"date"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	HostCPUs   int                `json:"host_cpus"`
	Metrics    map[string]float64 `json:"metrics"`
}

// sameMachineShape reports whether two snapshots were produced on
// comparable hosts, making their raw-time metrics directly gateable.
func sameMachineShape(a, b *snapshot) bool {
	return a.GoVersion == b.GoVersion && a.GOMAXPROCS == b.GOMAXPROCS
}

func loadSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// latestBaseline returns the lexicographically newest BENCH_*.json in dir
// (the files are date-named, so lexical order is chronological order).
func latestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baseline found in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func main() {
	newPath := flag.String("new", "", "freshly generated snapshot to judge (required)")
	basePath := flag.String("baseline", "", "baseline snapshot (default: newest BENCH_*.json in -dir)")
	dir := flag.String("dir", ".", "directory searched for the committed baseline")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression before failing")
	flag.Parse()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchtrend: -new is required")
		os.Exit(2)
	}
	if *basePath == "" {
		p, err := latestBaseline(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
			os.Exit(2)
		}
		*basePath = p
	}
	base, err := loadSnapshot(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: baseline: %v\n", err)
		os.Exit(2)
	}
	fresh, err := loadSnapshot(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: new snapshot: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("baseline %s (%s) vs %s (%s), tolerance %.0f%%\n",
		*basePath, base.Date, *newPath, fresh.Date, 100**tolerance)

	gated := make([]string, 0, len(trendMetrics))
	for m := range trendMetrics {
		gated = append(gated, m)
	}
	sort.Strings(gated)

	comparable := sameMachineShape(base, fresh)
	if !comparable {
		fmt.Printf("machine shape differs (go %s/%d procs vs %s/%d): machine-dependent metrics warn only\n",
			base.GoVersion, base.GOMAXPROCS, fresh.GoVersion, fresh.GOMAXPROCS)
	}
	var regressions []string
	compared := 0
	for _, m := range gated {
		gm := trendMetrics[m]
		bv, inBase := base.Metrics[m]
		nv, inNew := fresh.Metrics[m]
		if gm.mustBeZero {
			// Absolute gate: judged against zero, with or without a
			// baseline value, on any machine shape.
			if !inNew {
				continue
			}
			compared++
			status := "ok"
			if nv != 0 {
				status = "REGRESSION (must be zero)"
				regressions = append(regressions, m)
			}
			baseStr := "n/a"
			if inBase {
				baseStr = fmt.Sprintf("%.1f", bv)
			}
			fmt.Printf("  %-40s %14s -> %14.1f  (gate: == 0)  %s\n", m, baseStr, nv, status)
			continue
		}
		if gm.mustBeBelow > 0 {
			// Absolute ceiling: judged against the threshold, with or
			// without a baseline value, on any machine shape.
			if !inNew {
				continue
			}
			compared++
			status := "ok"
			if nv >= gm.mustBeBelow {
				status = "REGRESSION (over ceiling)"
				regressions = append(regressions, m)
			}
			baseStr := "n/a"
			if inBase {
				baseStr = fmt.Sprintf("%.4f", bv)
			}
			fmt.Printf("  %-40s %14s -> %14.4f  (gate: < %g)  %s\n", m, baseStr, nv, gm.mustBeBelow, status)
			continue
		}
		if !inBase || !inNew || bv == 0 {
			continue
		}
		compared++
		change := nv/bv - 1 // positive = value went up
		regressed := change > *tolerance
		if !gm.lowerIsBetter {
			regressed = change < -*tolerance
		}
		status := "ok"
		if regressed {
			switch {
			case gm.warnOnly:
				status = "warn (warn-only metric, not gated)"
			case gm.minHostCPUs > 0 && (base.HostCPUs < gm.minHostCPUs || fresh.HostCPUs < gm.minHostCPUs):
				status = fmt.Sprintf("warn (host < %d CPUs, not gated)", gm.minHostCPUs)
			case gm.machineDependent && !comparable:
				status = "warn (machine mismatch, not gated)"
			default:
				status = "REGRESSION"
				regressions = append(regressions, m)
			}
		}
		fmt.Printf("  %-40s %14.1f -> %14.1f  (%+6.1f%%)  %s\n", m, bv, nv, 100*change, status)
	}
	if compared == 0 {
		fmt.Println("baseline has no substrate metrics yet; nothing to gate (pass)")
		return
	}

	// Informational drift report for the shared semantic metrics.
	var shared []string
	for m := range base.Metrics {
		if _, gatedMetric := trendMetrics[m]; gatedMetric {
			continue
		}
		if _, ok := fresh.Metrics[m]; ok {
			shared = append(shared, m)
		}
	}
	sort.Strings(shared)
	if len(shared) > 0 {
		fmt.Println("semantic metrics (informational):")
		for _, m := range shared {
			bv, nv := base.Metrics[m], fresh.Metrics[m]
			pct := 0.0
			if bv != 0 {
				pct = 100 * (nv/bv - 1)
			}
			fmt.Printf("  %-40s %14.4f -> %14.4f  (%+6.1f%%)\n", m, bv, nv, pct)
		}
	}

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchtrend: %d substrate regression(s) beyond %.0f%%: %v\n",
			len(regressions), 100**tolerance, regressions)
		os.Exit(1)
	}
	fmt.Println("bench trend ok")
}
