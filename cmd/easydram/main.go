// Command easydram runs the paper's experiments and prints their tables
// and series.
//
// Usage:
//
//	easydram [-quick] [-seed N] [-burst-cap N] [-shard-workers N] [-cores N]
//	         [-faults] [-mitigation P] [-save-profile DIR] [-load-profile DIR]
//	         [-checkpoint FILE] [-v] <experiment>
//
// where experiment is one of: table1, fig2, validation, fig8, fig10,
// fig11, fig12, fig13, fig14, energy, ablations, disturb, snapshot,
// fairness, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"easydram/internal/experiments"
	"easydram/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "use unit-test-scale parameters")
	seed := flag.Uint64("seed", 1, "DRAM variation seed")
	burstCap := flag.Int("burst-cap", 0, "row-hit burst service cap (0 = serial; emulated results are identical either way)")
	channels := flag.Int("channels", 0, "memory channels (power of two; 0 = the paper's single channel). Topology is a workload axis: multi-channel runs overlap service and change emulated timing")
	shardWorkers := flag.Int("shard-workers", 0, "host workers advancing emulated channels in parallel within one run (0 = GOMAXPROCS, 1 = serial); results are byte-identical at any count")
	ranks := flag.Int("ranks", 0, "ranks per channel bus (power of two; 0 = the paper's single rank; rank switches pay the tRTRS turnaround)")
	cores := flag.Int("cores", 0, "emulated core count the fairness sweep tops out at (0 = the default {2, 4} grid); a modeled-system axis — more cores means more contention")
	faults := flag.Bool("faults", false, "arm default fault injection (chip disturb, transient/stuck-at reads, host-link failures) on every run; deterministic in -seed")
	mitigation := flag.String("mitigation", "", "RowHammer mitigation policy on every run: para or trr (empty = none)")
	verbose := flag.Bool("v", false, "print per-run health counters to stderr: DRAM timing/rank-switch violations, retries, quarantined/remapped rows, mitigation refreshes, link faults")
	saveProfile := flag.String("save-profile", "", "directory to persist characterization profiles to (atomic writes; profiling experiments write one file per workload)")
	loadProfile := flag.String("load-profile", "", "characterization store directory to warm-start from; missing/corrupt/stale profiles degrade to fresh characterization")
	checkpoint := flag.String("checkpoint", "", "file the snapshot experiment writes its mid-run system checkpoint to")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: easydram [-quick] [-seed N] [-channels N] [-ranks N] [-shard-workers N] [-cores N] [-faults] [-mitigation P] [-save-profile DIR] [-load-profile DIR] [-checkpoint FILE] [-v] <table1|fig2|validation|fig8|fig10|fig11|fig12|fig13|fig14|energy|ablations|disturb|snapshot|fairness|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
		opt.KernelSize = workload.Small
	}
	opt.Seed = *seed
	opt.BurstCap = *burstCap
	opt.Channels = *channels
	opt.Ranks = *ranks
	opt.Cores = *cores
	opt.ShardWorkers = *shardWorkers
	opt.Faults = *faults
	opt.Mitigation = *mitigation
	opt.Verbose = *verbose
	opt.ProfileSave = *saveProfile
	opt.ProfileLoad = *loadProfile
	opt.CheckpointPath = *checkpoint

	if err := run(flag.Arg(0), opt); err != nil {
		fmt.Fprintf(os.Stderr, "easydram: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, opt experiments.Options) error {
	switch name {
	case "table1":
		r, err := experiments.Table1(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "fig2":
		r, err := experiments.Figure2(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
	case "validation":
		r, err := experiments.Validation(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
	case "fig8":
		r, err := experiments.Figure8(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
	case "fig10":
		r, err := experiments.RowClone(opt, false)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
	case "fig11":
		r, err := experiments.RowClone(opt, true)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
	case "fig12":
		r, err := experiments.Figure12(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Heatmap())
	case "energy":
		r, err := experiments.Energy(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
	case "ablations":
		rs, err := experiments.Ablations(opt)
		if err != nil {
			return err
		}
		for _, r := range rs {
			fmt.Println(r.Table())
		}
	case "disturb":
		r, err := experiments.DisturbSweep(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
	case "snapshot":
		r, err := experiments.WarmStart(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
		if s := r.SpeedupX(); s > 0 {
			fmt.Fprintf(os.Stderr, "easydram: warm-start characterization speedup %.1fx (host wall clock)\n", s)
		}
	case "fairness":
		r, err := experiments.FairnessSweep(opt)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
	case "fig13", "fig14":
		r, err := experiments.Figure13(opt)
		if err != nil {
			return err
		}
		if name == "fig13" {
			fmt.Println(r.Table())
		} else {
			fmt.Println(r.SpeedTable())
		}
	case "all":
		for _, n := range []string{"table1", "fig2", "validation", "fig8", "fig10", "fig11", "fig12", "fig13", "fig14", "energy", "ablations", "disturb", "snapshot", "fairness"} {
			fmt.Printf("==== %s ====\n", n)
			if err := run(n, opt); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
