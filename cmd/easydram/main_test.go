package main

import (
	"testing"

	"easydram/internal/experiments"
)

func quickOpt() experiments.Options {
	opt := experiments.Quick()
	opt.Sizes = []int{32 << 10}
	opt.LatSizesKiB = []int{64}
	opt.HeatRows = 96
	return opt
}

func TestRunDispatch(t *testing.T) {
	for _, name := range []string{"table1", "fig2", "fig8", "fig10", "fig12", "disturb", "fairness"} {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := run(name, quickOpt()); err != nil {
				t.Fatalf("run(%q): %v", name, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", quickOpt()); err == nil {
		t.Fatalf("unknown experiment must error")
	}
}

// TestRunWithFaultFlags exercises the -faults/-mitigation/-v path: every
// kernel runs under default injection with a mitigation policy armed, and
// the verbose reporter fires without disturbing the run.
func TestRunWithFaultFlags(t *testing.T) {
	opt := quickOpt()
	opt.Faults = true
	opt.Mitigation = "trr"
	opt.Verbose = true
	if err := run("table1", opt); err != nil {
		t.Fatalf("run(table1) with fault flags: %v", err)
	}
}
